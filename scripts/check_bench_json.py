#!/usr/bin/env python3
"""Validate a metrics-registry JSON document (BENCH_*.json / --metrics-json).

Checks the schema contract of ``armine_metrics::json::BenchDocument``:

* ``schema_version`` is exactly 1;
* ``benchmark`` is a non-empty string and ``metrics`` a non-empty list;
* every series has a name, a known kind, and canonical label keys only;
* counters are non-negative integers, gauges are numbers, histograms
  carry ``count``/``sum``/``min``/``max``;
* with ``--require-run-labels``, every series also carries the
  run-identifying base labels a ``ParallelRun`` snapshot stamps
  (``algorithm``, ``backend``, ``counter``, ``fault_plan``, ``procs``).

Usage: check_bench_json.py FILE [--require-run-labels]
"""

import json
import sys

# Mirrors armine_metrics::LABEL_KEYS (canonical order).
LABEL_KEYS = [
    "algorithm",
    "backend",
    "counter",
    "fault_plan",
    "procs",
    "scenario",
    "rank",
    "pass",
]
RUN_BASE_LABELS = {"algorithm", "backend", "counter", "fault_plan", "procs"}
KINDS = {"counter", "gauge", "histogram"}


def fail(msg):
    print(f"check_bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def check_series(i, m):
    where = f"metrics[{i}] ({m.get('name', '?')})"
    if not m.get("name"):
        fail(f"{where}: missing name")
    kind = m.get("kind")
    if kind not in KINDS:
        fail(f"{where}: unknown kind {kind!r}")
    labels = m.get("labels")
    if not isinstance(labels, dict):
        fail(f"{where}: labels must be an object")
    unknown = set(labels) - set(LABEL_KEYS)
    if unknown:
        fail(f"{where}: unknown label keys {sorted(unknown)}")
    if list(labels) != [k for k in LABEL_KEYS if k in labels]:
        fail(f"{where}: labels not in canonical order: {list(labels)}")
    if kind == "counter":
        v = m.get("value")
        if not isinstance(v, int) or v < 0:
            fail(f"{where}: counter value must be a non-negative integer, got {v!r}")
    elif kind == "gauge":
        if not isinstance(m.get("value"), (int, float)):
            fail(f"{where}: gauge value must be a number")
    else:
        for field in ("count", "sum", "min", "max"):
            if field not in m:
                fail(f"{where}: histogram missing {field!r}")
    return labels


def main():
    args = [a for a in sys.argv[1:] if a != "--require-run-labels"]
    require_run_labels = "--require-run-labels" in sys.argv[1:]
    if len(args) != 1:
        fail(f"usage: {sys.argv[0]} FILE [--require-run-labels]")
    path = args[0]
    with open(path) as f:
        d = json.load(f)
    if d.get("schema_version") != 1:
        fail(f"{path}: schema_version must be 1, got {d.get('schema_version')!r}")
    if not d.get("benchmark"):
        fail(f"{path}: missing benchmark name")
    metrics = d.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        fail(f"{path}: metrics must be a non-empty list")
    for i, m in enumerate(metrics):
        labels = check_series(i, m)
        if require_run_labels:
            missing = RUN_BASE_LABELS - set(labels)
            if missing:
                fail(
                    f"metrics[{i}] ({m['name']}): missing run base labels "
                    f"{sorted(missing)}"
                )
    print(
        f"{path}: ok — {d['benchmark']!r}, {len(metrics)} series, schema v1"
    )


if __name__ == "__main__":
    main()
