//! Inside the Hybrid Distribution: watch HD choose its processor grid
//! pass by pass (Table II of the paper), and see how the choice reacts to
//! the group-threshold knob `m`.
//!
//! ```sh
//! cargo run --release --example hybrid_grid
//! ```

use armine::parallel::{choose_grid, Algorithm, ParallelMiner, ParallelParams};
use armine_datagen::QuestParams;

fn main() {
    // The static view: what grid does choose_grid pick for the paper's own
    // Table II candidate counts (P = 64, m = 50K)?
    println!("Paper Table II candidate profile at P=64, m=50K:");
    println!("{:>6} {:>12} {:>14}", "pass", "candidates", "configuration");
    for (pass, m_total) in [
        (2usize, 351_000usize),
        (3, 4_348_000),
        (4, 115_000),
        (5, 76_000),
        (6, 56_000),
        (7, 34_000),
    ] {
        let (g, cols) = choose_grid(64, m_total, 50_000);
        println!("{pass:>6} {m_total:>12} {:>13}", format!("{g}x{cols}"));
    }

    // The dynamic view: run HD on a scaled workload and print the grids it
    // actually used, for three different thresholds.
    let dataset = QuestParams::paper_t15_i6()
        .num_transactions(3200)
        .num_items(250)
        .num_patterns(120)
        .seed(7)
        .generate();
    let miner = ParallelMiner::new(32);
    for m in [200usize, 800, 100_000] {
        let run = miner.mine(
            Algorithm::Hd { group_threshold: m },
            &dataset,
            &ParallelParams::with_min_support(0.01).page_size(100),
        );
        let grids: Vec<String> = run
            .passes
            .iter()
            .map(|p| format!("k{}:{}x{}", p.k, p.grid.0, p.grid.1))
            .collect();
        println!(
            "\nm = {m:>6}: response {:.2} ms, grids [{}]",
            run.response_time * 1e3,
            grids.join(" ")
        );
    }
    println!(
        "\nSmall m → many candidate partitions (IDD-like); huge m → G = 1 \
         everywhere (CD). The sweet spot keeps every processor's tree just \
         big enough to amortize its share of the data movement."
    );
}
