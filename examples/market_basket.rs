//! Market-basket analysis on a synthetic retail workload: generate a
//! Quest `T15.I6` database (the paper's workload shape), mine it at
//! several support levels, and report the rule head.
//!
//! ```sh
//! cargo run --release --example market_basket
//! ```

use armine::core::apriori::{Apriori, AprioriParams};
use armine::core::rules::generate_rules;
use armine::datagen::QuestParams;

fn main() {
    // A 20K-transaction retail-like database: average basket of 15 items,
    // latent purchase patterns of ~6 items (the paper's T15.I6 shape).
    let params = QuestParams::paper_t15_i6()
        .num_transactions(20_000)
        .num_items(500)
        .num_patterns(300)
        .seed(2024);
    let dataset = params.generate();
    println!(
        "Generated {} ({} transactions, {} items, avg length {:.1})",
        params.name(),
        dataset.len(),
        dataset.num_items(),
        dataset.avg_transaction_len()
    );

    // Sweep the minimum support: the candidate/frequent counts collapse as
    // the bar rises — the effect that drives the paper's Figures 12/15.
    println!(
        "\n{:>8}  {:>10}  {:>9}  {:>7}",
        "support", "candidates", "frequent", "passes"
    );
    for support in [0.02, 0.01, 0.005, 0.0025] {
        let run =
            Apriori::new(AprioriParams::with_min_support(support)).mine(dataset.transactions());
        let candidates: usize = run.passes.iter().map(|p| p.candidates).sum();
        println!(
            "{:>7.2}%  {:>10}  {:>9}  {:>7}",
            support * 100.0,
            candidates,
            run.frequent.len(),
            run.passes.len()
        );
    }

    // Mine once more at 0.5% and show the strongest rules.
    let run = Apriori::new(AprioriParams::with_min_support(0.005)).mine(dataset.transactions());
    let mut rules = generate_rules(&run.frequent, 0.8);
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap()
            .then(b.support_count.cmp(&a.support_count))
    });
    println!(
        "\nTop rules at 0.5% support / 80% confidence ({} total):",
        rules.len()
    );
    for rule in rules.iter().take(10) {
        println!("  {rule}");
    }
}
