//! Quickstart: the paper's own supermarket example (Table I), end to end —
//! serial mining, rule generation, and a 4-processor parallel run.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use armine::core::apriori::{Apriori, AprioriParams};
use armine::core::rules::generate_rules;
use armine::core::Dataset;
use armine::parallel::{Algorithm, ParallelMiner, ParallelParams};

fn main() {
    // Table I: five supermarket transactions.
    let dataset = Dataset::from_named_transactions(&[
        &["Bread", "Coke", "Milk"],
        &["Beer", "Bread"],
        &["Beer", "Coke", "Diaper", "Milk"],
        &["Beer", "Bread", "Diaper", "Milk"],
        &["Coke", "Diaper", "Milk"],
    ]);
    let names = dataset.interner().expect("named dataset has an interner");

    // --- Serial Apriori at minimum support 40% (count 2). -----------------
    let run = Apriori::new(AprioriParams::with_min_support(0.4)).mine(dataset.transactions());
    println!("Frequent itemsets (min support 40%):");
    for k in 1..=run.frequent.max_len() {
        for (set, count) in run.frequent.level(k) {
            let pretty: Vec<&str> = set
                .items()
                .iter()
                .map(|&i| names.name(i).unwrap())
                .collect();
            println!("  {{{}}}  σ = {count}", pretty.join(", "));
        }
    }

    // --- Rules at minimum confidence 60%. ---------------------------------
    // The paper's Section II example: {Diaper, Milk} => {Beer} has
    // support 40% and confidence 66%.
    println!("\nAssociation rules (min confidence 60%):");
    let mut rules = generate_rules(&run.frequent, 0.6);
    rules.sort_by(|a, b| b.confidence.partial_cmp(&a.confidence).unwrap());
    for rule in &rules {
        let side = |s: &armine::core::ItemSet| -> String {
            s.items()
                .iter()
                .map(|&i| names.name(i).unwrap())
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "  {{{}}} => {{{}}}  (support {:.0}%, confidence {:.0}%)",
            side(&rule.antecedent),
            side(&rule.consequent),
            rule.support * 100.0,
            rule.confidence * 100.0
        );
    }

    // --- The same mining on 4 simulated processors. ------------------------
    // All four parallel formulations produce exactly the serial answer;
    // here we run HD (the paper's best) and show the virtual response time
    // the Cray T3E cost model assigns.
    let miner = ParallelMiner::new(4);
    let params = ParallelParams::with_min_support(0.4);
    let parallel = miner.mine(
        Algorithm::Hd {
            group_threshold: 1000,
        },
        &dataset,
        &params,
    );
    println!(
        "\nParallel (HD, 4 processors): {} frequent itemsets, {:.1} µs virtual response time",
        parallel.frequent.len(),
        parallel.response_time * 1e6
    );
    assert_eq!(parallel.frequent.len(), run.frequent.len());
    println!("Parallel result matches serial Apriori exactly.");
}
