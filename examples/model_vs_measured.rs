//! Section IV's closed-form cost model against the simulator's measured
//! response times: do Equations 4–7 predict the virtual-time curves?
//!
//! The closed forms take the workload summary (N, M, C, S); the simulator
//! executes the real algorithms. Exact agreement is not expected (the
//! closed forms idealize away pass structure, pipelining and collective
//! internals) — what must match is the *relative* behaviour: how each
//! algorithm's time moves with P, and which algorithm wins where.
//!
//! ```sh
//! cargo run --release --example model_vs_measured
//! ```

use armine::core::model::{cd_time, hd_time, idd_time, CostParams, Workload};
use armine::parallel::{Algorithm, ParallelMiner, ParallelParams};
use armine_datagen::QuestParams;

fn main() {
    let dataset = QuestParams::paper_t15_i6()
        .num_transactions(4000)
        .num_items(250)
        .num_patterns(120)
        .seed(5)
        .generate();
    let params = ParallelParams::with_min_support(0.012)
        .page_size(100)
        .max_k(3);

    println!(
        "{:>4} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "P", "CD meas", "IDD meas", "HD meas", "CD model", "IDD mdl", "HD model"
    );
    for procs in [4usize, 8, 16, 32] {
        let miner = ParallelMiner::new(procs);
        let cd = miner.mine(Algorithm::Cd, &dataset, &params);
        let idd = miner.mine(Algorithm::Idd, &dataset, &params);
        let hd = miner.mine(
            Algorithm::Hd {
                group_threshold: 1000,
            },
            &dataset,
            &params,
        );

        // Summarize the workload for the closed forms from the measured
        // pass-3 numbers: M = |C_3|, C = (|T| choose 3), S from the run.
        let m = cd.passes[2].candidates as f64;
        let c = armine::core::transaction::binomial(dataset.avg_transaction_len().round() as u64, 3)
            as f64;
        let stats = &cd.passes[2].tree_stats;
        let s = stats.candidate_checks as f64 / stats.distinct_leaf_visits.max(1) as f64;
        let w = Workload {
            n: dataset.len() as f64,
            m,
            c,
            s,
        };
        let cost = CostParams::cray_t3e();
        let g = hd.passes[2].grid.0 as f64;
        println!(
            "{procs:>4} | {:>8.1}ms {:>8.1}ms {:>8.1}ms | {:>8.1}ms {:>8.1}ms {:>8.1}ms",
            cd.pass_time(3) * 1e3,
            idd.pass_time(3) * 1e3,
            hd.pass_time(3) * 1e3,
            cd_time(&w, procs as f64, &cost) * 1e3,
            idd_time(&w, procs as f64, &cost) * 1e3,
            hd_time(&w, procs as f64, g, &cost) * 1e3,
        );
    }
    println!(
        "\nThe models track the measured trends: CD scales in N/P with an \
         O(M) floor,\nIDD flattens as imbalance and O(N) movement bite, HD \
         follows the lower envelope."
    );
}
