//! A miniature of the paper's Figure 10 scaleup study: hold the work per
//! processor constant, grow the machine, and watch how the four parallel
//! formulations respond on the simulated Cray T3E.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use armine::parallel::{Algorithm, ParallelMiner, ParallelParams};
use armine_datagen::QuestParams;

fn main() {
    let per_proc = 250; // transactions per processor (paper: 50K)
    let algos = [
        Algorithm::Cd,
        Algorithm::Dd,
        Algorithm::DdComm,
        Algorithm::Idd,
        Algorithm::Hd {
            group_threshold: 300,
        },
    ];
    println!("Scaleup: {per_proc} transactions/processor, T15.I6, 1% support\n");
    println!(
        "{:>5}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
        "P", "CD", "DD", "DD+comm", "IDD", "HD"
    );
    for procs in [2usize, 4, 8, 16] {
        let dataset = QuestParams::paper_t15_i6()
            .num_transactions(per_proc * procs)
            .num_items(200)
            .num_patterns(100)
            .seed(99)
            .generate();
        let params = ParallelParams::with_min_support(0.01).page_size(100);
        let miner = ParallelMiner::new(procs);
        let mut times = Vec::new();
        let mut frequent = None;
        for algo in algos {
            let run = miner.mine(algo, &dataset, &params);
            if let Some(f) = frequent {
                assert_eq!(f, run.frequent.len(), "algorithms disagree!");
            }
            frequent = Some(run.frequent.len());
            times.push(run.response_time);
        }
        println!(
            "{:>5}  {:>9.2}ms {:>9.2}ms {:>9.2}ms {:>9.2}ms {:>9.2}ms",
            procs,
            times[0] * 1e3,
            times[1] * 1e3,
            times[2] * 1e3,
            times[3] * 1e3,
            times[4] * 1e3,
        );
    }
    println!(
        "\nA scalable algorithm keeps the row flat (work per processor is constant).\n\
         DD blows up with P (naive all-to-all + redundant traversal);\n\
         IDD drifts up (load imbalance); CD and HD stay nearly flat — Figure 10."
    );
}
