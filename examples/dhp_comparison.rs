//! Serial Apriori vs DHP (Park–Chen–Yu): same answers, fewer candidates.
//!
//! DHP's bucket filter kills most of the pass-2 candidates before any
//! hash tree is built, and its transaction trimming shrinks every later
//! scan — the ideas PDM parallelizes (see `exp_pdm`).
//!
//! ```sh
//! cargo run --release --example dhp_comparison
//! ```

use armine::core::apriori::{Apriori, AprioriParams};
use armine::core::dhp::{Dhp, DhpParams};
use armine::datagen::QuestParams;

fn main() {
    let dataset = QuestParams::paper_t15_i6()
        .num_transactions(5000)
        .num_items(400)
        .num_patterns(200)
        .seed(77)
        .generate();
    let support = 0.01;

    let apriori = Apriori::new(AprioriParams::with_min_support(support).max_k(4))
        .mine(dataset.transactions());
    let dhp = Dhp::new(
        DhpParams::with_min_support(support)
            .buckets(1 << 16)
            .max_k(4),
    )
    .mine(dataset.transactions());

    assert_eq!(
        apriori.frequent.len(),
        dhp.frequent().len(),
        "identical lattices by construction"
    );
    println!(
        "{} @ {:.1}% support: {} frequent itemsets\n",
        QuestParams::paper_t15_i6().num_transactions(5000).name(),
        support * 100.0,
        apriori.frequent.len()
    );
    println!(
        "{:>4}  {:>12}  {:>12}  {:>8}  {:>12}  {:>12}",
        "pass", "apriori |C|", "DHP |C|", "pruned", "live tx", "live items"
    );
    for (i, dp) in dhp.dhp_passes.iter().enumerate() {
        let pruned = if dp.apriori_candidates > 0 {
            format!(
                "{:.1}%",
                100.0 * (dp.apriori_candidates - dp.candidates) as f64
                    / dp.apriori_candidates as f64
            )
        } else {
            "-".into()
        };
        println!(
            "{:>4}  {:>12}  {:>12}  {:>8}  {:>12}  {:>12}",
            i + 1,
            dp.apriori_candidates,
            dp.candidates,
            pruned,
            dp.live_transactions,
            dp.live_items
        );
    }
    println!(
        "\ntotal candidates pruned by the hash filters: {}",
        dhp.candidates_pruned()
    );
}
