//! Offline stand-in for the `criterion` crate, vendored so the workspace
//! builds without network access. It is a real (if minimal) wall-clock
//! harness: warm-up, multiple timed samples, and a `min/median/max`
//! per-iteration report — enough to compare host-time performance across
//! revisions, which is what this repo's benches are for. Statistical
//! machinery (outlier analysis, regression detection, HTML reports) is
//! intentionally absent.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] amortizes setup; the distinction only
/// affects batching granularity upstream, so it is accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark harness configuration and runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
    /// `--test` mode: run every benchmark exactly once, untimed.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            filter: None,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one sample");
        self.sample_size = n;
        self
    }

    /// Total time budget the samples aim to fill.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Applies harness CLI arguments (`--test`, `--bench`, and an optional
    /// name filter), as cargo's bench runner passes them.
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags cargo or users may pass that we accept and ignore.
                s if s.starts_with('-') => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Opens a named group; benchmark ids are prefixed `group/`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, f);
        self
    }

    fn run_one<F>(&self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{id}: ok");
            return;
        }
        // Warm-up: run single iterations until the budget elapses; the
        // last observed time calibrates the sample iteration count.
        let warm_start = Instant::now();
        let per_iter = loop {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if warm_start.elapsed() >= self.warm_up_time {
                break b.elapsed.max(Duration::from_nanos(1));
            }
        };
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 30) as u64;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let max = samples[samples.len() - 1];
        println!(
            "{id:<50} time: [{} {} {}]  ({} samples × {iters} iters)",
            format_time(min),
            format_time(median),
            format_time(max),
            samples.len(),
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// A named group of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group (upstream writes summary reports here; no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Declares a benchmark group entry point, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs_the_routine() {
        let mut runs = 0u64;
        quick().bench_function("counting", |b| b.iter(|| runs += 1));
        assert!(runs > 0, "the routine must actually execute");
    }

    #[test]
    fn groups_prefix_ids_and_run() {
        let mut c = quick();
        let mut hits = 0u64;
        let mut g = c.benchmark_group("g");
        g.bench_function("one", |b| b.iter(|| hits += 1));
        g.finish();
        assert!(hits > 0);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut seen = Vec::new();
        let mut counter = 0u64;
        quick().bench_function("batched", |b| {
            b.iter_batched(
                || {
                    counter += 1;
                    counter
                },
                |input| seen.push(input),
                BatchSize::LargeInput,
            );
        });
        assert!(!seen.is_empty());
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "inputs must be fresh");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = quick();
        c.filter = Some("match-me".into());
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran, "filtered-out benches must not run");
        c.bench_function("has-match-me-inside", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = quick();
        c.test_mode = true;
        let mut runs = 0u64;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
