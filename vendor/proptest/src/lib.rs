//! Offline stand-in for the `proptest` crate, vendored so the workspace
//! builds without network access. It keeps proptest's *model* — a
//! [`Strategy`](strategy::Strategy) produces random values, the
//! [`proptest!`] macro runs each property over many generated cases, and
//! failures report the generated inputs — but performs no shrinking: a
//! failing case is reported verbatim. Case generation is fully
//! deterministic (seeded from the property's name), so failures reproduce
//! exactly on re-run.

#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The `Just` strategy: always yields a clone of the value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// A collection-size specification: an exact size or a size range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng.gen_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with a size drawn from `size`. As in
    /// upstream proptest, the target size is best-effort when the element
    /// domain is too small to supply enough distinct values.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Inserting duplicates does not grow the set; bound the attempts
            // so a too-small element domain cannot loop forever.
            let mut attempts = 0usize;
            let max_attempts = 100 * (target + 1);
            while out.len() < target && attempts < max_attempts {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod test_runner {
    //! Deterministic per-property RNG and run configuration.

    use rand::prelude::*;

    /// Per-property generator; seeded from the property name so each test
    /// sees a stable stream across runs and machines.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        /// The underlying generator (used by strategy implementations).
        pub rng: StdRng,
    }

    impl TestRng {
        /// A generator seeded from the property's identity.
        pub fn for_test(file: &str, name: &str) -> Self {
            // FNV-1a over file and test name: stable, dependency-free.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in file.bytes().chain(name.bytes()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                rng: StdRng::seed_from_u64(h),
            }
        }
    }

    /// Run configuration: how many cases each property executes.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// The commonly imported surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property; on failure the harness reports
/// the generated inputs for the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {
        assert_eq!($lhs, $rhs)
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        assert_eq!($lhs, $rhs, $($fmt)+)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {
        assert_ne!($lhs, $rhs)
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        assert_ne!($lhs, $rhs, $($fmt)+)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over many generated argument
/// tuples. Failures re-panic with the generated inputs printed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::Config::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: one test item per invocation.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::for_test(file!(), stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest: property `{}` failed at case {}/{} with inputs:",
                        stringify!($name),
                        case + 1,
                        config.cases,
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::for_test(file!(), "ranges");
        for _ in 0..1000 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (0usize..=4).generate(&mut rng);
            assert!(y <= 4);
        }
    }

    #[test]
    fn vec_and_btree_set_respect_sizes() {
        let mut rng = TestRng::for_test(file!(), "collections");
        for _ in 0..200 {
            let v = collection::vec(0u64..100, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            let s = collection::btree_set(0u32..1000, 3).generate(&mut rng);
            assert_eq!(s.len(), 3);
            let t = collection::btree_set(0u32..1000, 0..=5).generate(&mut rng);
            assert!(t.len() <= 5);
        }
    }

    #[test]
    fn btree_set_caps_attempts_on_tiny_domains() {
        let mut rng = TestRng::for_test(file!(), "tiny-domain");
        // Only 2 distinct values exist; asking for 10 must terminate.
        let s = collection::btree_set(0u32..2, 10).generate(&mut rng);
        assert!(s.len() <= 2);
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::for_test(file!(), "map");
        let doubled = (1u32..10).prop_map(|x| x * 2).generate(&mut rng);
        assert!(doubled % 2 == 0 && (2..20).contains(&doubled));
    }

    #[test]
    fn deterministic_per_test_name() {
        let a = collection::vec(0u64..50, 4).generate(&mut TestRng::for_test("f", "t"));
        let b = collection::vec(0u64..50, 4).generate(&mut TestRng::for_test("f", "t"));
        let c = collection::vec(0u64..50, 4).generate(&mut TestRng::for_test("f", "u"));
        assert_eq!(a, b);
        assert_ne!(a, c, "different names must seed different streams");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: multiple args, trailing comma, doc comment.
        #[test]
        fn macro_smoke(
            xs in collection::vec(0u32..50, 1..8),
            k in 1usize..4,
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!((1..4).contains(&k));
            prop_assert_eq!(xs.len(), xs.as_slice().len());
        }

        /// No trailing comma, single line.
        #[test]
        fn macro_smoke_no_trailing(a in 0u64..10, b in 0u64..10) {
            prop_assert!(a < 10 && b < 10);
        }
    }
}
