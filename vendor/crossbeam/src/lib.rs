//! Offline stand-in for the `crossbeam` crate, vendored so the workspace
//! builds without network access. Only the surface armine-mpsim actually
//! uses is provided: `channel::{unbounded, Sender, Receiver}` with
//! crossbeam's disconnect semantics (a `recv` on an empty channel fails
//! once every sender is gone).

pub mod channel {
    //! An unbounded MPMC channel built on `Mutex` + `Condvar`.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        /// Live `Sender` clones; 0 means the channel is disconnected.
        senders: usize,
    }

    /// Sending half; cloning registers another producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on an empty channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> where T: std::fmt::Debug {}

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; never blocks (the channel is unbounded).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.queue.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            drop(inner);
            if disconnected {
                // Wake every blocked receiver so it can observe disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).unwrap();
            }
        }

        /// Non-blocking receive; `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.inner.lock().unwrap().queue.pop_front()
        }

        /// Blocks until a message is available, every sender is dropped,
        /// or `timeout` passes, whichever comes first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self.shared.ready.wait_timeout(inner, remaining).unwrap();
                inner = guard;
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1u32).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            tx.send(7).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cross_thread_delivery_unblocks_receiver() {
            let (tx, rx) = unbounded::<u64>();
            let handle = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(99).unwrap();
            assert_eq!(handle.join().unwrap(), 99);
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            let t0 = std::time::Instant::now();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(5));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_secs(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_timeout_unblocks_on_cross_thread_send() {
            let (tx, rx) = unbounded::<u64>();
            let handle = std::thread::spawn(move || {
                rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap()
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(42).unwrap();
            assert_eq!(handle.join().unwrap(), 42);
        }

        #[test]
        fn blocked_receiver_sees_disconnect() {
            let (tx, rx) = unbounded::<u64>();
            let handle = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(tx);
            assert_eq!(handle.join().unwrap(), Err(RecvError));
        }
    }
}
