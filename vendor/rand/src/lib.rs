//! Offline stand-in for the `rand` crate, vendored so the workspace builds
//! without network access. It is **not** stream-compatible with upstream
//! `rand` — seeded sequences differ — but it provides the same API subset
//! this workspace uses (`Rng`, `SeedableRng`, `rngs::StdRng`,
//! `seq::SliceRandom`, `prelude`) with fully deterministic, portable
//! output: every consumer here seeds explicitly and only relies on
//! *reproducibility*, never on upstream's exact streams.

#![warn(missing_docs)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from their "natural" domain:
/// `f64`/`f32` from `[0, 1)`, `bool` as a fair coin, integers from their
/// full range. The stand-in for `rand::distributions::Standard`.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire-style widening multiply: unbiased enough for
                // simulation workloads, branch-free, deterministic.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_from(rng)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value whose type implements [`Standard`].
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, as in upstream `rand`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded through
    /// SplitMix64. Fast, high-quality, and portable across platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (`shuffle`, `partial_shuffle`, `choose`).
pub mod seq {
    use super::Rng;

    /// Random slice operations, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Shuffles `amount` random elements into the head of the slice;
        /// returns `(head, tail)` like upstream.
        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = rng.gen_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let a = rng.gen_range(3u32..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(0usize..=4);
            assert!(b <= 4);
            let c = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&c));
        }
        // Full-width inclusive range must not overflow.
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "astronomically unlikely");
    }

    #[test]
    fn partial_shuffle_head_is_sampled_without_replacement() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut v: Vec<u32> = (0..100).collect();
        let (head, tail) = v.partial_shuffle(&mut rng, 10);
        assert_eq!(head.len(), 10);
        assert_eq!(tail.len(), 90);
        let mut all: Vec<u32> = head.iter().chain(tail.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(23);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(29);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}
