#![warn(missing_docs)]

//! # armine — scalable parallel association-rule mining
//!
//! A facade over the `armine` workspace, reproducing Han, Karypis & Kumar,
//! *Scalable Parallel Data Mining for Association Rules* (SIGMOD '97 /
//! TKDE '99): the serial Apriori algorithm, the IBM Quest-style synthetic
//! data generator, a message-passing multicomputer simulator, and the four
//! parallel Apriori formulations the paper studies (CD, DD, IDD, HD).
//!
//! Most users want:
//!
//! - [`core`] ([`armine_core`]) — items, transactions, hash tree, serial
//!   Apriori, rule generation, the analytical cost model.
//! - [`datagen`] ([`armine_datagen`]) — synthetic transaction databases
//!   matching the paper's workloads (T15.I6, etc.).
//! - [`mpsim`] ([`armine_mpsim`]) — the virtual-time message-passing
//!   runtime the parallel algorithms run on.
//! - [`parallel`] ([`armine_parallel`]) — CD, DD, DD+comm, IDD, HD and the
//!   multi-pass parallel mining driver.
//! - [`metrics`] ([`armine_metrics`]) — the labeled metrics registry every
//!   run snapshots into, and its schema-versioned JSON exporter.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use armine_core as core;
pub use armine_datagen as datagen;
pub use armine_metrics as metrics;
pub use armine_mpsim as mpsim;
pub use armine_parallel as parallel;
